package repro

// One benchmark per figure of the report, at laptop scale. Each bench runs
// the same code path as cmd/figures and publishes the figure's headline
// quantity through b.ReportMetric, so `go test -bench=. -benchmem` prints
// a miniature of every result table. EXPERIMENTS.md records the
// correspondence with the report's curves; use `cmd/figures -full` for the
// report-scale sweeps.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/experiments"
	"repro/internal/hotpotato"
	"repro/internal/phold"
	"repro/internal/routing"
	"repro/internal/traffic"
)

// benchN is the torus side used by the per-figure benchmarks.
const benchN = 16

// runHotpotato executes one parallel run and reports kernel stats.
func runHotpotato(b *testing.B, cfg hotpotato.Config) (hotpotato.Totals, *core.Stats) {
	b.Helper()
	sim, model, err := hotpotato.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ks, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	return model.Totals(sim), ks
}

// BenchmarkFig3DeliveryTime measures average packet delivery time across
// the report's injector loads (Figure 3's series at one N).
func BenchmarkFig3DeliveryTime(b *testing.B) {
	for _, load := range []float64{0, 50, 75, 100} {
		b.Run(fmt.Sprintf("load%.0f", load), func(b *testing.B) {
			var delivery float64
			for i := 0; i < b.N; i++ {
				cfg := hotpotato.DefaultConfig(benchN)
				cfg.InjectorPercent = load
				cfg.Steps = 80
				cfg.Seed = uint64(i + 1)
				totals, _ := runHotpotato(b, cfg)
				delivery = totals.AvgDelivery
			}
			b.ReportMetric(delivery, "steps/delivery")
		})
	}
}

// BenchmarkFig4InjectionWait measures the average wait to inject (Figure
// 4's series at one N).
func BenchmarkFig4InjectionWait(b *testing.B) {
	for _, load := range []float64{50, 75, 100} {
		b.Run(fmt.Sprintf("load%.0f", load), func(b *testing.B) {
			var wait float64
			for i := 0; i < b.N; i++ {
				cfg := hotpotato.DefaultConfig(benchN)
				cfg.InjectorPercent = load
				cfg.Steps = 80
				cfg.Seed = uint64(i + 1)
				totals, _ := runHotpotato(b, cfg)
				wait = totals.AvgWait
			}
			b.ReportMetric(wait, "steps/inject")
		})
	}
}

// BenchmarkFig5EventRate measures the committed event rate for the
// report's PE ladder (Figure 5). PE count 1 is the sequential engine.
func BenchmarkFig5EventRate(b *testing.B) {
	for _, pes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("pe%d", pes), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				cfg := hotpotato.DefaultConfig(benchN)
				cfg.Steps = 80
				cfg.Seed = 1
				cfg.NumPEs = pes
				if pes == 1 {
					seq, _, err := hotpotato.BuildSequential(cfg)
					if err != nil {
						b.Fatal(err)
					}
					ks, err := seq.Run()
					if err != nil {
						b.Fatal(err)
					}
					rate = ks.EventRate
				} else {
					_, ks := runHotpotato(b, cfg)
					rate = ks.EventRate
				}
			}
			b.ReportMetric(rate, "events/s")
		})
	}
}

// BenchmarkFig6Efficiency measures speed-up per PE (Figure 6) in one go:
// one sequential baseline plus one 4-PE run per iteration.
func BenchmarkFig6Efficiency(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		cfg := hotpotato.DefaultConfig(benchN)
		cfg.Steps = 80
		cfg.Seed = 1
		seq, _, err := hotpotato.BuildSequential(cfg)
		if err != nil {
			b.Fatal(err)
		}
		base, err := seq.Run()
		if err != nil {
			b.Fatal(err)
		}
		pcfg := cfg
		pcfg.NumPEs = 4
		_, ks := runHotpotato(b, pcfg)
		if base.EventRate > 0 {
			eff = ks.EventRate / (4 * base.EventRate)
		}
	}
	b.ReportMetric(eff, "speedup/PE")
}

// BenchmarkFig7KPRollbacks measures total events rolled back across the
// KP ladder (Figure 7) at fixed PEs.
func BenchmarkFig7KPRollbacks(b *testing.B) {
	for _, kps := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("kp%d", kps), func(b *testing.B) {
			var rolled float64
			for i := 0; i < b.N; i++ {
				cfg := hotpotato.DefaultConfig(benchN)
				cfg.Steps = 80
				cfg.Seed = 1
				cfg.NumPEs = 4
				cfg.NumKPs = kps
				_, ks := runHotpotato(b, cfg)
				rolled = float64(ks.RolledBackEvents)
			}
			b.ReportMetric(rolled, "rolledback")
		})
	}
}

// BenchmarkFig8KPEventRate measures event rate across the KP ladder
// (Figure 8).
func BenchmarkFig8KPEventRate(b *testing.B) {
	for _, kps := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("kp%d", kps), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				cfg := hotpotato.DefaultConfig(benchN)
				cfg.Steps = 80
				cfg.Seed = 1
				cfg.NumPEs = 4
				cfg.NumKPs = kps
				_, ks := runHotpotato(b, cfg)
				rate = ks.EventRate
			}
			b.ReportMetric(rate, "events/s")
		})
	}
}

// BenchmarkAttachment3Determinism times the determinism check (sequential
// plus parallel run with comparison) — the cost of the correctness gate.
func BenchmarkAttachment3Determinism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Determinism(experiments.Options{Steps: 40, Seed: uint64(i + 1), PEs: 4})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Equal {
			b.Fatal("determinism violated")
		}
	}
}

// BenchmarkBaselinePolicies compares the paper's algorithm with the
// baseline deflection policies (the report's related-work comparison).
func BenchmarkBaselinePolicies(b *testing.B) {
	for _, name := range routing.Names() {
		b.Run(name, func(b *testing.B) {
			pol, err := routing.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var delivery float64
			for i := 0; i < b.N; i++ {
				cfg := hotpotato.DefaultConfig(benchN)
				cfg.Policy = pol
				cfg.Steps = 80
				cfg.Seed = 1
				totals, _ := runHotpotato(b, cfg)
				delivery = totals.AvgDelivery
			}
			b.ReportMetric(delivery, "steps/delivery")
		})
	}
}

// BenchmarkAblationEventQueue compares the pending-queue implementations
// under PHOLD (DESIGN.md ablation).
func BenchmarkAblationEventQueue(b *testing.B) {
	for _, q := range eventq.Kinds() {
		b.Run(q, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				sim, _, err := phold.Build(phold.Config{
					NumLPs:     1024,
					Population: 8,
					RemoteProb: 0.5,
					EndTime:    40,
					Seed:       1,
					Queue:      q,
				})
				if err != nil {
					b.Fatal(err)
				}
				ks, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				rate = ks.EventRate
			}
			b.ReportMetric(rate, "events/s")
		})
	}
}

// BenchmarkAblationHeartbeat quantifies the administrative-event overhead
// the report avoids by omitting HEARTBEAT (§3.1.4).
func BenchmarkAblationHeartbeat(b *testing.B) {
	for _, hb := range []bool{false, true} {
		b.Run(fmt.Sprintf("heartbeat=%v", hb), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				cfg := hotpotato.DefaultConfig(benchN)
				cfg.Steps = 80
				cfg.Seed = 1
				cfg.Heartbeat = hb
				_, ks := runHotpotato(b, cfg)
				rate = ks.EventRate
			}
			b.ReportMetric(rate, "events/s")
		})
	}
}

// BenchmarkTheoremDistanceProfile measures the delivery-vs-distance curve
// (the SPAA 2001 expected-O(n) check) and reports its slope.
func BenchmarkTheoremDistanceProfile(b *testing.B) {
	var slope float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.DistanceProfile(experiments.Options{Steps: 100, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		slope, _ = experiments.ProfileLinearity(points)
	}
	b.ReportMetric(slope, "steps/hop")
}

// BenchmarkRateSweepWait measures injection wait at light vs saturating
// per-source rates (the variable-rate extension study).
func BenchmarkRateSweepWait(b *testing.B) {
	for _, rate := range []float64{0.25, 1.0} {
		b.Run(fmt.Sprintf("rate%.2f", rate), func(b *testing.B) {
			var wait float64
			for i := 0; i < b.N; i++ {
				cfg := hotpotato.DefaultConfig(benchN)
				cfg.InjectionProb = rate
				cfg.Steps = 80
				cfg.Seed = 1
				totals, _ := runHotpotato(b, cfg)
				wait = totals.AvgWait
			}
			b.ReportMetric(wait, "steps/inject")
		})
	}
}

// BenchmarkTrafficPatterns measures delivery time under the synthetic
// traffic suite (the pattern-sweep experiment).
func BenchmarkTrafficPatterns(b *testing.B) {
	for _, name := range traffic.Names() {
		b.Run(name, func(b *testing.B) {
			pattern, err := traffic.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var delivery float64
			for i := 0; i < b.N; i++ {
				cfg := hotpotato.DefaultConfig(benchN)
				cfg.Traffic = pattern
				cfg.Steps = 80
				cfg.Seed = 1
				totals, _ := runHotpotato(b, cfg)
				delivery = totals.AvgDelivery
			}
			b.ReportMetric(delivery, "steps/delivery")
		})
	}
}

// BenchmarkSyncEngines compares the three execution engines on the same
// hot-potato workload (the synchronisation-comparison experiment).
func BenchmarkSyncEngines(b *testing.B) {
	cfg := hotpotato.DefaultConfig(benchN)
	cfg.Steps = 80
	cfg.Seed = 1
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq, _, err := hotpotato.BuildSequential(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := seq.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("timewarp", func(b *testing.B) {
		pcfg := cfg
		pcfg.NumPEs = 4
		for i := 0; i < b.N; i++ {
			runHotpotato(b, pcfg)
		}
	})
	b.Run("conservative", func(b *testing.B) {
		ccfg := cfg
		ccfg.NumPEs = 4
		for i := 0; i < b.N; i++ {
			cons, _, err := hotpotato.BuildConservative(ccfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cons.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelTorusComms is the cross-PE-traffic benchmark: the
// hot-potato torus with a striped KP→PE placement, so nearly every packet
// hop is a remote message. Where BenchmarkKernelPHOLD tracks the pending
// queue and event loop, this number moves with the kernel's communication
// layer — mailbox handoff, send coalescing and idle parking.
func BenchmarkKernelTorusComms(b *testing.B) {
	for _, pes := range []int{1, 4} {
		b.Run(fmt.Sprintf("pe%d", pes), func(b *testing.B) {
			var remote int64
			for i := 0; i < b.N; i++ {
				cfg := hotpotato.DefaultConfig(benchN)
				cfg.Steps = 80
				cfg.Seed = 1
				cfg.NumPEs = pes
				cfg.NumKPs = 256
				cfg.PEOfKP = func(kp int) int { return kp % pes }
				_, ks := runHotpotato(b, cfg)
				remote += ks.MailSent
			}
			b.ReportMetric(float64(remote)/float64(b.N), "remote-msgs/run")
		})
	}
}

// BenchmarkKernelPHOLD is the raw kernel throughput benchmark, the number
// to compare against other PDES engines.
func BenchmarkKernelPHOLD(b *testing.B) {
	for _, pes := range []int{1, 4} {
		b.Run(fmt.Sprintf("pe%d", pes), func(b *testing.B) {
			var committed int64
			for i := 0; i < b.N; i++ {
				sim, _, err := phold.Build(phold.Config{
					NumLPs:     4096,
					Population: 8,
					RemoteProb: 0.25,
					EndTime:    20,
					Seed:       1,
					NumPEs:     pes,
				})
				if err != nil {
					b.Fatal(err)
				}
				ks, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				committed += ks.Committed
			}
			b.ReportMetric(float64(committed)/float64(b.N), "events/run")
		})
	}
}
