// Command crashtest proves the checkpoint/restore subsystem's recovery
// contract by actually killing processes. The parent records a reference
// run in-process, verifies it against the sequential oracle, builds a
// child copy of itself with the crashpoints build tag, and then — for
// every registered kill point — runs the child under load with
// CRASHPOINTS armed so the kernel SIGKILLs it mid-publication. After each
// death the parent resumes from whatever the dead child left on disk and
// holds the resumed run to the recording bit-for-bit: final trace hash,
// per-round prefix hashes beyond the cut, committed counts composed
// across it. A child that survives its armed kill point is itself a test
// failure.
//
//	crashtest                     # one SIGKILL per registered kill point
//	crashtest -race               # child built with the race detector
//	crashtest -iters 50 -seed 3   # randomized kill loop (nightly)
//
// With -iters N the deterministic sweep is replaced by N randomized
// episodes: random kill point, random hit count, random model seed. Every
// episode must still recover exactly. Failing episodes keep their
// checkpoint directory and recording under -artifacts for post-mortem.
//
// Exits 0 when every kill recovered exactly, 1 on any recovery failure,
// 2 on usage or environment errors. See docs/CHECKPOINT.md and
// docs/TESTING.md ("Crash testing").
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/crash"
	"repro/internal/replay"
	"repro/internal/simcheck"
)

func main() {
	var (
		child     = flag.Bool("child", false, "run as the crash victim (internal; driven by the parent)")
		logPath   = flag.String("log", "", "replay log to run (child mode)")
		ckptDir   = flag.String("checkpoint-dir", "", "checkpoint directory (child mode)")
		every     = flag.Int("every", 16, "checkpoint cadence in GVT rounds")
		points    = flag.String("points", "", "comma-separated kill points to sweep (default: all registered)")
		model     = flag.String("model", "hotpotato", "model for the reference recording")
		pes       = flag.Int("pes", 4, "PE count for the reference recording")
		kps       = flag.Int("kps", 8, "KP count for the reference recording")
		seed      = flag.Uint64("seed", 7, "model seed (and randomized-mode schedule seed)")
		iters     = flag.Int("iters", 0, "randomized kill episodes (0 = one deterministic pass over -points)")
		race      = flag.Bool("race", false, "build the crash child with the race detector")
		artifacts = flag.String("artifacts", "", "keep failing checkpoint dirs and recordings under this directory")
		verbose   = flag.Bool("v", false, "verbose progress")
	)
	flag.Parse()

	if *child {
		runChild(*logPath, *ckptDir, *every)
		return
	}

	logf := func(format string, args ...any) {
		if *verbose {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	work, err := os.MkdirTemp("", "crashtest-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(work)

	childBin, err := buildChild(work, *race)
	if err != nil {
		fatal(err)
	}

	pts := crash.Points()
	if *points != "" {
		pts = strings.Split(*points, ",")
	}

	h := &harness{
		child: childBin, work: work, every: *every,
		artifacts: *artifacts, logf: logf,
	}

	failures := 0
	if *iters > 0 {
		// Nightly mode: randomized kill point, hit count and workload seed.
		// The schedule is a deterministic function of -seed.
		src := rand.New(rand.NewSource(int64(*seed)))
		for i := 0; i < *iters; i++ {
			pt := pts[src.Intn(len(pts))]
			hit := 1 + src.Intn(4)
			s := uint64(src.Int63()) | 1
			name := fmt.Sprintf("iter%03d-%s-hit%d-seed%d", i, pt, hit, s)
			if !h.episode(name, *model, *pes, *kps, s, pt, hit) {
				failures++
			}
		}
	} else {
		// Deterministic sweep: every registered point, killed on its second
		// hit so a complete previous checkpoint exists to fall back to, plus
		// one first-hit kill at the head of the sequence (recovery before
		// any checkpoint was ever published means restarting from scratch).
		lg, err := h.record(*model, *pes, *kps, *seed)
		if err != nil {
			fatal(err)
		}
		if !h.kill(lg, "uninterrupted", "", 0) {
			failures++
		}
		if !h.kill(lg, "first-"+pts[0], pts[0], 1) {
			failures++
		}
		for _, pt := range pts {
			if !h.kill(lg, pt, pt, 2) {
				failures++
			}
		}
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "crashtest: %d recovery failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("crashtest: every kill recovered exactly")
}

// harness drives crash episodes against a prebuilt crashpoints child.
type harness struct {
	child     string
	work      string
	every     int
	artifacts string
	logf      func(format string, args ...any)
	recorded  map[string]*replay.Log
	logFiles  map[string]string
}

// record produces (and caches) the reference recording for a cell and
// checks it against the sequential oracle — the ground truth every resumed
// run is later held to.
func (h *harness) record(model string, pes, kps int, seed uint64) (*replay.Log, error) {
	key := fmt.Sprintf("%s-%d-%d-%d", model, pes, kps, seed)
	if h.recorded == nil {
		h.recorded = map[string]*replay.Log{}
		h.logFiles = map[string]string{}
	}
	if lg, ok := h.recorded[key]; ok {
		return lg, nil
	}
	spec := simcheck.SpecForCell(simcheck.Cell{
		Model: model, PEs: pes, KPs: kps, Queue: "heap", Seed: seed,
	})
	lg, err := replay.Record(simcheck.Runner{}, spec)
	if err != nil {
		return nil, fmt.Errorf("recording %s: %w", key, err)
	}
	if diffs, err := replay.Replay(simcheck.Runner{}, lg, replay.EngineSequential); err != nil {
		return nil, fmt.Errorf("oracle run for %s: %w", key, err)
	} else if len(diffs) > 0 {
		return nil, fmt.Errorf("recording %s diverges from the sequential oracle: %v", key, diffs)
	}
	path := filepath.Join(h.work, key+".replay")
	if err := replay.WriteFile(path, lg); err != nil {
		return nil, err
	}
	h.recorded[key], h.logFiles[key] = lg, path
	h.logf("recorded %s: %d rounds, %d committed (oracle ok)", key, len(lg.Rounds), lg.Final.Committed)
	return lg, nil
}

// episode runs one randomized kill: record (cached per seed), kill, verify.
func (h *harness) episode(name, model string, pes, kps int, seed uint64, point string, hit int) bool {
	lg, err := h.record(model, pes, kps, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashtest: %s: %v\n", name, err)
		return false
	}
	return h.kill(lg, name, point, hit)
}

// kill runs the child on lg's recording with the named kill point armed on
// its hit-th pass (no kill when point is empty), then verifies recovery
// from whatever the child left behind. Reports success.
func (h *harness) kill(lg *replay.Log, name, point string, hit int) bool {
	dir := filepath.Join(h.work, "ck-"+name)
	logFile := h.logFiles[fmt.Sprintf("%s-%d-%d-%d", lg.Spec.Model, lg.Spec.PEs, lg.Spec.KPs, lg.Spec.Seed)]
	cmd := exec.Command(h.child,
		"-child", "-log", logFile, "-checkpoint-dir", dir,
		"-every", fmt.Sprint(h.every))
	cmd.Env = os.Environ()
	if point != "" {
		cmd.Env = append(cmd.Env, fmt.Sprintf("CRASHPOINTS=%s:%d", point, hit))
	}
	out, err := cmd.CombinedOutput()

	ok := false
	defer func() {
		if ok {
			os.RemoveAll(dir)
		} else {
			h.keep(name, dir, logFile)
		}
	}()

	if point == "" {
		// Control run: checkpointing armed, nobody killed — the run must
		// reproduce the recording and leave a loadable checkpoint behind.
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashtest: %s: uninterrupted child failed: %v\n%s", name, err, out)
			return false
		}
		if _, err := replay.LoadCheckpoint(dir); err != nil {
			fmt.Fprintf(os.Stderr, "crashtest: %s: no loadable checkpoint after clean run: %v\n", name, err)
			return false
		}
		h.logf("ok   %s (clean checkpointed run reproduces)", name)
		ok = true
		return true
	}

	if !diedBySIGKILL(err) {
		fmt.Fprintf(os.Stderr, "crashtest: %s: child did not die at %s hit %d (err=%v)\n%s",
			name, point, hit, err, out)
		return false
	}

	// The child is dead mid-publication. Recover: resume from the published
	// checkpoint, or — if the kill predates any publication — restart from
	// scratch. Either way the recording's fingerprints are the contract.
	diffs, err := replay.ResumeVerify(simcheck.Runner{}, lg, dir)
	how := "resumed"
	if errors.Is(err, replay.ErrNoCheckpoint) {
		how = "restarted"
		diffs, err = replay.Replay(simcheck.Runner{}, lg, replay.EngineOptimistic)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashtest: %s: recovery failed: %v\n", name, err)
		return false
	}
	if len(diffs) > 0 {
		fmt.Fprintf(os.Stderr, "crashtest: %s: %s run diverges from recording:\n", name, how)
		for _, d := range diffs {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		return false
	}
	h.logf("ok   %s (killed at %s hit %d, %s run reproduces)", name, point, hit, how)
	ok = true
	return true
}

// keep preserves a failing episode's checkpoint directory and recording
// under the artifact directory, when one is configured.
func (h *harness) keep(name, dir, logFile string) {
	if h.artifacts == "" {
		return
	}
	dst := filepath.Join(h.artifacts, name)
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return
	}
	os.Rename(dir, filepath.Join(dst, "checkpoints"))
	if data, err := os.ReadFile(logFile); err == nil {
		os.WriteFile(filepath.Join(dst, "run.replay"), data, 0o644)
	}
	fmt.Fprintf(os.Stderr, "crashtest: kept failing state under %s\n", dst)
}

// diedBySIGKILL reports whether a child process was killed by SIGKILL —
// the only acceptable way for an armed child to stop.
func diedBySIGKILL(err error) bool {
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		return false
	}
	ws, ok := exit.Sys().(syscall.WaitStatus)
	return ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL
}

// buildChild compiles this command with the crashpoints build tag (and
// optionally the race detector) into dir, producing the kill victim.
func buildChild(dir string, race bool) (string, error) {
	bin := filepath.Join(dir, "crashtest-child")
	args := []string{"build", "-tags", "crashpoints"}
	if race {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "repro/cmd/crashtest")
	cmd := exec.Command("go", args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building crash child: %v\n%s", err, out)
	}
	return bin, nil
}

// runChild is the victim side: replay the recording under the optimistic
// engine with periodic checkpoints armed. When CRASHPOINTS is set (and the
// binary carries the crashpoints tag) the kernel SIGKILLs us mid-publish;
// otherwise the run completes and is held to the recording like any
// checkpointed verify.
func runChild(logPath, dir string, every int) {
	if logPath == "" || dir == "" {
		fatal(fmt.Errorf("-child needs -log and -checkpoint-dir"))
	}
	if os.Getenv("CRASHPOINTS") != "" && !crash.Enabled {
		fatal(fmt.Errorf("CRASHPOINTS set but this binary lacks the crashpoints build tag"))
	}
	lg, err := replay.ReadFile(logPath)
	if err != nil {
		fatal(err)
	}
	diffs, err := replay.ReplayCheckpointed(simcheck.Runner{}, lg,
		dir, simcheck.StateCodecName(lg.Spec.Model), every)
	if err != nil {
		fatal(err)
	}
	if len(diffs) > 0 {
		fmt.Fprintf(os.Stderr, "crashtest child: run diverges from recording:\n")
		for _, d := range diffs {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		os.Exit(1)
	}
	fmt.Println("crashtest child: checkpointed run reproduces recording")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crashtest:", err)
	os.Exit(2)
}
