// Command soaktest runs the randomized soak/chaos harness: a seeded
// schedule of differential episodes rotating models and engines, composing
// kernel fault injectors, squeezing the memory valve, and sweeping kernel
// invariants live while each episode runs. Budgets are wall-clock or
// episode-count; with neither flag the default is a 16-episode smoke. The
// run is a deterministic function of -seed, so any failure line is a
// reproduction recipe — and failing optimistic episodes additionally land
// as shrunk .replay artifacts under -artifacts.
//
// Failures and artifact paths go to stderr; the summary goes to stdout.
// Exit status: 0 clean, 1 failures, 2 usage or setup error.
//
// Examples:
//
//	soaktest                                  # 16-episode smoke
//	soaktest -seed 7 -wall 90s -artifacts out # CI smoke soak
//	soaktest -seed 7 -wall 20m -artifacts out # nightly soak
//	soaktest -models phold -mutation map-order -episodes 2 -artifacts out
//	                                          # self-test: watch it fail
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/profiling"
	"repro/internal/simcheck"
	"repro/internal/soak"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "schedule seed; same seed, same schedule, same fingerprint")
		episodes  = flag.Int("episodes", 0, "episode-count budget (0 = none)")
		wall      = flag.Duration("wall", 0, "wall-clock budget, e.g. 90s or 20m (0 = none)")
		models    = flag.String("models", "", "comma-separated models to rotate (default: all)")
		mutation  = flag.String("mutation", "", "arm a seeded bug (self-test demo); see simcheck -mutation")
		artifacts = flag.String("artifacts", "", "directory for shrunk .replay artifacts of failing optimistic episodes")
		paranoid  = flag.Bool("paranoid", true, "sweep kernel invariants live during every optimistic episode")
		verbose   = flag.Bool("v", false, "log every episode, not just failures")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	stopProf, perr := prof.Start()
	if perr != nil {
		fatal(perr)
	}
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}

	cfg := soak.Config{
		Seed:        *seed,
		Episodes:    *episodes,
		Wall:        *wall,
		Mutation:    simcheck.Mutation(*mutation),
		ArtifactDir: *artifacts,
		Paranoid:    *paranoid,
	}
	if *models != "" {
		cfg.Models = strings.Split(*models, ",")
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	rep, err := soak.Run(cfg)
	if err != nil {
		fatal(err)
	}

	for _, f := range rep.Failures {
		fmt.Fprintln(os.Stderr, f)
	}
	for _, a := range rep.Artifacts {
		fmt.Fprintf(os.Stderr, "soaktest: replay artifact %s (inspect with: replay -dump %s)\n", a, a)
	}
	fmt.Println(rep)
	// Flush profiles before the explicit exit below — deferred calls would
	// not run past os.Exit.
	if err := stopProf(); err != nil {
		fatal(err)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soaktest:", err)
	os.Exit(2)
}
