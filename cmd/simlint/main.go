// Command simlint runs the Time Warp kernel's static analyzer suite
// (reversecheck, determcheck, lifecheck, statscheck — see docs/ANALYSIS.md)
// over the packages matched by its arguments, defaulting to ./...
//
// Exit status is 1 when findings are reported, 2 on usage or load errors.
// Findings are waived, where intentional, with //simlint:<keyword> <reason>
// annotations; an unexplained or unknown annotation is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-tests] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the simlint analyzers over the given package patterns (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			hatch := ""
			if a.Keyword != "" {
				hatch = fmt.Sprintf(" (waive: //simlint:%s <reason>)", a.Keyword)
			}
			fmt.Printf("%-14s %s%s\n", a.Name, a.Doc, hatch)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	findings, err := driver.Run(wd, *tests, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(driver.Rel(wd, f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
