// Command simlint runs the Time Warp kernel's static analyzer suite
// (reversecheck, determcheck, lifecheck, statscheck, ownercheck,
// atomiccheck — see docs/ANALYSIS.md) over the packages matched by its
// arguments, defaulting to ./...
//
// Exit status is 1 when unwaived findings are reported, 2 on usage or
// load errors. Findings are waived, where intentional, with
// //simlint:<keyword> <reason> annotations; an unexplained, unknown,
// misplaced or stale annotation is itself a finding. -format json emits
// every finding — waived ones included — as stable machine-readable
// records for CI annotation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// jsonFinding is the stable machine-readable record -format json emits.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Waived   bool   `json:"waived"`
}

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list the analyzers and exit")
	format := flag.String("format", "text", "output format: text or json")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-tests] [-format text|json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the simlint analyzers over the given package patterns (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			hatch := ""
			if a.Keyword != "" {
				hatch = fmt.Sprintf(" (waive: //simlint:%s <reason>)", a.Keyword)
			}
			fmt.Printf("%-14s %s%s\n", a.Name, a.Doc, hatch)
		}
		return
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "simlint: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	findings, err := driver.Run(wd, *tests, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	failing := driver.Unwaived(findings)
	switch *format {
	case "json":
		records := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			f = driver.Rel(wd, f)
			records = append(records, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Position.Filename,
				Line:     f.Position.Line,
				Col:      f.Position.Column,
				Message:  f.Message,
				Waived:   f.Waived,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	default:
		for _, f := range failing {
			fmt.Println(driver.Rel(wd, f))
		}
	}
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(failing))
		os.Exit(1)
	}
}
