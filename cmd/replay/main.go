// Command replay records, re-executes, inspects and shrinks deterministic
// replay logs (.replay files) for the bundled models. A log captures a
// run's complete recipe — model, engine shape, seed, fault plan — plus
// every injected event and the per-GVT-round trace fingerprints the run
// committed, so a failure found anywhere (CI, the simcheck matrix, a
// soak box) replays bit-for-bit on a developer machine.
//
// Examples:
//
//	replay -record -model hotpotato -pes 2 -seed 7 -o run.replay
//	replay run.replay                    # -mode verify: optimistic re-run
//	replay -mode sequential run.replay   # against the sequential oracle
//	replay -dump run.replay              # decode and print the log
//	replay -shrink run.replay            # minimise a FAILING log
//
//	replay -checkpoint-dir ck run.replay # verify + periodic checkpoints
//	replay -resume -checkpoint-dir ck run.replay   # resume + verify tail
//
// With -checkpoint-dir the optimistic re-run publishes a crash-atomic
// checkpoint into the directory every -checkpoint-every GVT rounds; with
// -resume the run instead restores the directory's published checkpoint
// and verifies the resumed tail (and composed final fingerprint) against
// the recording — the crash-recovery path (see docs/CHECKPOINT.md).
//
// Verify exits 0 when the re-run reproduces every recorded fingerprint,
// 1 when it diverges, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/replay"
	"repro/internal/simcheck"
)

func main() {
	var (
		record   = flag.Bool("record", false, "record a fresh run instead of reading a log")
		dump     = flag.Bool("dump", false, "decode the log and print it")
		shrink   = flag.Bool("shrink", false, "minimise a failing log (delta-debug injections, bisect horizon)")
		mode     = flag.String("mode", "verify", "replay engine: verify (optimistic) or sequential (oracle)")
		out      = flag.String("o", "", "output path for -record / -shrink")
		model    = flag.String("model", "hotpotato", "model to record: "+strings.Join(simcheck.ModelNames(), ", "))
		pes      = flag.Int("pes", 2, "PE count for -record")
		kps      = flag.Int("kps", 8, "KP count for -record")
		queue    = flag.String("queue", "heap", "pending-queue kind for -record: "+strings.Join(eventq.Kinds(), ", "))
		seed     = flag.Uint64("seed", 1, "model seed for -record")
		end      = flag.Float64("end", 0, "virtual-time horizon for -record (0 = model default)")
		mutation = flag.String("mutation", "", "arm a seeded bug when recording (demo; see simcheck -mutation)")
		faults   = flag.String("faults", "", "kernel fault plan when recording: default or burst (empty = clean)")
		verbose  = flag.Bool("v", false, "verbose: shrink progress, full dump")
		ckptDir  = flag.String("checkpoint-dir", "", "publish periodic checkpoints into this directory during verify")
		ckptN    = flag.Int("checkpoint-every", simcheck.CheckpointEvery, "checkpoint cadence in GVT rounds")
		resume   = flag.Bool("resume", false, "restore -checkpoint-dir's published checkpoint and verify the resumed run")
	)
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	if *record {
		if flag.NArg() > 0 {
			fatal(fmt.Errorf("-record takes no input file (got %v)", flag.Args()))
		}
		if *out == "" {
			fatal(fmt.Errorf("-record needs -o OUT.replay"))
		}
		spec := simcheck.SpecForCell(simcheck.Cell{
			Model:    *model,
			PEs:      *pes,
			KPs:      *kps,
			Queue:    *queue,
			Seed:     *seed,
			Mutation: simcheck.Mutation(*mutation),
			Faults:   faultPlan(*faults),
		})
		spec.EndTime = core.Time(*end)
		lg, err := replay.Record(simcheck.Runner{}, spec)
		if err != nil {
			fatal(err)
		}
		if err := replay.WriteFile(*out, lg); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %s: %d injections, %d GVT rounds, %d committed events\n",
			*out, len(lg.Inject), len(lg.Rounds), lg.Final.Committed)
		return
	}

	if flag.NArg() != 1 {
		fatal(fmt.Errorf("need exactly one input .replay file (got %d args)", flag.NArg()))
	}
	path := flag.Arg(0)
	lg, err := replay.ReadFile(path)
	if err != nil {
		fatal(err)
	}

	switch {
	case *dump:
		if err := replay.Dump(os.Stdout, lg, *verbose); err != nil {
			fatal(err)
		}

	case *shrink:
		dst := *out
		if dst == "" {
			dst = strings.TrimSuffix(path, ".replay") + ".min.replay"
		}
		res, err := replay.Shrink(simcheck.Runner{}, lg, logf)
		if err != nil {
			fatal(err)
		}
		if err := replay.WriteFile(dst, res.Log); err != nil {
			fatal(err)
		}
		fmt.Printf("shrunk %s -> %s: %d -> %d injections, horizon %v -> %v (%d test runs)\n",
			path, dst, res.FromInjections, res.ToInjections, res.FromEndTime, res.ToEndTime, res.Tests)

	default:
		var eng replay.Engine
		switch *mode {
		case "verify":
			eng = replay.EngineOptimistic
		case "sequential":
			eng = replay.EngineSequential
		default:
			fatal(fmt.Errorf("unknown -mode %q (verify or sequential)", *mode))
		}
		what := *mode
		var diffs []string
		switch {
		case *resume:
			// Resume is an optimistic-kernel feature; the checkpoint names
			// the state codec, the log names the model.
			if *ckptDir == "" {
				fatal(fmt.Errorf("-resume needs -checkpoint-dir"))
			}
			if eng != replay.EngineOptimistic {
				fatal(fmt.Errorf("-resume requires -mode verify (the optimistic engine)"))
			}
			what = "resume"
			diffs, err = replay.ResumeVerify(simcheck.Runner{}, lg, *ckptDir)
		case *ckptDir != "":
			if eng != replay.EngineOptimistic {
				fatal(fmt.Errorf("-checkpoint-dir requires -mode verify (the optimistic engine)"))
			}
			what = "checkpointed verify"
			diffs, err = replay.ReplayCheckpointed(simcheck.Runner{}, lg,
				*ckptDir, simcheck.StateCodecName(lg.Spec.Model), *ckptN)
		default:
			diffs, err = replay.Replay(simcheck.Runner{}, lg, eng)
		}
		if err != nil {
			fatal(err)
		}
		if len(diffs) > 0 {
			fmt.Fprintf(os.Stderr, "replay: %s DIVERGES from recording %s:\n", what, path)
			for _, d := range diffs {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			os.Exit(1)
		}
		fmt.Printf("replay: %s reproduces %s (%d injections, %d rounds, %d committed events)\n",
			what, path, len(lg.Inject), len(lg.Rounds), lg.Final.Committed)
	}
}

// faultPlan maps the -faults flag to the simcheck adversarial plans, so a
// recorded cell matches what the matrix would have run.
func faultPlan(name string) *core.Faults {
	switch name {
	case "":
		return nil
	case "default":
		return simcheck.DefaultFaults()
	case "burst":
		return simcheck.BurstFaults()
	default:
		fatal(fmt.Errorf("unknown -faults %q (default or burst)", name))
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replay:", err)
	os.Exit(2)
}
