// Command figures regenerates the report's figures as aligned tables (or
// CSV) from fresh simulation runs. Each figure corresponds to one sweep of
// internal/experiments; see DESIGN.md's experiment index.
//
//	figures -fig 3           # delivery time vs N (Figure 3)
//	figures -fig 3 -chart    # with the ASCII curve rendering
//	figures -fig all -full   # every figure at report scale (slow!)
//	figures -fig 7 -csv      # machine-readable output
//	figures -fig all -out d/ # also write one CSV file per table
//
// Figure names: 3, 4, 5, 6, 7, 8, determinism, baselines, queues,
// heartbeat, distance, rates, tuning, sync, patterns, memory, topology,
// warmup, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 3,4,5,6,7,8,determinism,baselines,queues,heartbeat,distance,rates,tuning,sync,patterns,memory,topology,warmup,all")
		full     = flag.Bool("full", false, "report-scale sweeps (N up to 256; takes a long time)")
		steps    = flag.Int("steps", 0, "override simulation length in time steps (0 = per-figure default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		pes      = flag.Int("pes", 0, "PE count for non-PE-sweep figures (0 = default)")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outDir   = flag.String("out", "", "directory to also write each table as a CSV file")
		chart    = flag.Bool("chart", false, "also draw ASCII charts for the curve figures")
		progress = flag.Bool("progress", true, "print per-run progress to stderr")
	)
	flag.Parse()

	opt := experiments.Options{Full: *full, Steps: *steps, Seed: *seed, PEs: *pes}
	if *progress {
		opt.Progress = os.Stderr
	}

	run := func(name string) error {
		switch name {
		case "3", "4":
			points, err := experiments.DeliverySweep(opt)
			if err != nil {
				return err
			}
			if name == "3" || *fig == "all" {
				emit("fig3", experiments.Fig3Table(points), *csvOut, *outDir)
				plot(*chart, experiments.Fig3Chart(points))
				slope, r2 := experiments.LinearityReport(points,
					func(p experiments.LoadPoint) float64 { return p.AvgDelivery }, 100)
				fmt.Printf("linearity (100%% load): slope=%.3f steps/N, R²=%.3f\n\n", slope, r2)
			}
			if name == "4" || *fig == "all" {
				emit("fig4", experiments.Fig4Table(points), *csvOut, *outDir)
				plot(*chart, experiments.Fig4Chart(points))
				slope, r2 := experiments.LinearityReport(points,
					func(p experiments.LoadPoint) float64 { return p.AvgWait }, 100)
				fmt.Printf("linearity (100%% load): slope=%.3f steps/N, R²=%.3f\n\n", slope, r2)
			}
			return nil
		case "5", "6":
			points, err := experiments.SpeedupSweep(opt)
			if err != nil {
				return err
			}
			if name == "5" || *fig == "all" {
				emit("fig5", experiments.Fig5Table(points), *csvOut, *outDir)
				plot(*chart, experiments.Fig5Chart(points))
			}
			if name == "6" || *fig == "all" {
				emit("fig6", experiments.Fig6Table(points), *csvOut, *outDir)
			}
			return nil
		case "7", "8":
			points, err := experiments.KPSweep(opt)
			if err != nil {
				return err
			}
			if name == "7" || *fig == "all" {
				emit("fig7", experiments.Fig7Table(points), *csvOut, *outDir)
				plot(*chart, experiments.Fig7Chart(points))
			}
			if name == "8" || *fig == "all" {
				emit("fig8", experiments.Fig8Table(points), *csvOut, *outDir)
				plot(*chart, experiments.Fig8Chart(points))
			}
			return nil
		case "determinism":
			res, err := experiments.Determinism(opt)
			if err != nil {
				return err
			}
			fmt.Printf("Attachment 3: determinism check (sequential vs %d PEs / %d KPs)\n", res.PEs, res.KPs)
			fmt.Printf("sequential:\n%v", res.Sequential)
			fmt.Printf("parallel:\n%v", res.Parallel)
			if res.Equal {
				fmt.Println("RESULT: identical — the parallel model is deterministic and repeatable")
			} else {
				fmt.Println("RESULT: MISMATCH — determinism violated")
				os.Exit(1)
			}
			fmt.Println()
			return nil
		case "baselines":
			points, err := experiments.BaselineSweep(opt)
			if err != nil {
				return err
			}
			emit("baselines", experiments.BaselineTable(points), *csvOut, *outDir)
			return nil
		case "queues":
			points, err := experiments.QueueAblation(opt)
			if err != nil {
				return err
			}
			emit("queues", experiments.QueueTable(points), *csvOut, *outDir)
			return nil
		case "heartbeat":
			points, err := experiments.HeartbeatAblation(opt)
			if err != nil {
				return err
			}
			emit("heartbeat", experiments.HeartbeatTable(points), *csvOut, *outDir)
			return nil
		case "distance":
			points, err := experiments.DistanceProfile(opt)
			if err != nil {
				return err
			}
			emit("distance", experiments.DistanceProfileTable(points), *csvOut, *outDir)
			plot(*chart, experiments.DistanceChart(points))
			slope, r2 := experiments.ProfileLinearity(points)
			fmt.Printf("linearity: slope=%.3f steps/hop, R²=%.3f\n\n", slope, r2)
			return nil
		case "rates":
			points, err := experiments.RateSweep(opt)
			if err != nil {
				return err
			}
			emit("rates", experiments.RateTable(points), *csvOut, *outDir)
			return nil
		case "tuning":
			points, err := experiments.TuningSweep(opt)
			if err != nil {
				return err
			}
			emit("tuning", experiments.TuningTable(points), *csvOut, *outDir)
			return nil
		case "sync":
			points, err := experiments.SyncComparison(opt)
			if err != nil {
				return err
			}
			emit("sync", experiments.SyncTable(points), *csvOut, *outDir)
			return nil
		case "warmup":
			points, err := experiments.Warmup(opt)
			if err != nil {
				return err
			}
			emit("warmup", experiments.WarmupTable(points), *csvOut, *outDir)
			plot(*chart, experiments.WarmupChart(points))
			return nil
		case "topology":
			points, err := experiments.TopologySweep(opt)
			if err != nil {
				return err
			}
			emit("topology", experiments.TopologyTable(points), *csvOut, *outDir)
			return nil
		case "memory":
			points, err := experiments.MemorySweep(opt)
			if err != nil {
				return err
			}
			emit("memory", experiments.MemoryTable(points), *csvOut, *outDir)
			return nil
		case "patterns":
			points, err := experiments.PatternSweep(opt)
			if err != nil {
				return err
			}
			emit("patterns", experiments.PatternTable(points), *csvOut, *outDir)
			return nil
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
	}

	var names []string
	if *fig == "all" {
		names = []string{"3", "5", "7", "determinism", "baselines", "queues", "heartbeat", "distance", "rates", "tuning", "sync", "patterns", "memory", "topology", "warmup"}
	} else {
		names = []string{*fig}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
}

func emit(name string, t stats.Table, csvOut bool, outDir string) {
	var err error
	if csvOut {
		fmt.Printf("# %s\n", t.Title)
		err = t.RenderCSV(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
		fmt.Println()
	}
	if err == nil && outDir != "" {
		err = writeCSV(outDir, name, t)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// plot renders an ASCII chart when charts are enabled.
func plot(enabled bool, c stats.Chart) {
	if !enabled {
		return
	}
	if err := c.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	fmt.Println()
}

// writeCSV saves one table as <dir>/<name>.csv.
func writeCSV(dir, name string, t stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	if err := t.RenderCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
