// Command hotpotato runs one hot-potato routing simulation and prints the
// network statistics block (and, with -kernel, the Time Warp kernel
// statistics), mirroring the report's simulation executable.
//
// Examples:
//
//	hotpotato -n 32 -steps 200
//	hotpotato -n 64 -inject 50 -policy greedy -pes 4 -kps 64
//	hotpotato -n 16 -sequential -seed 7
//
// Crash recovery (Time Warp engine only): -checkpoint-dir publishes a
// crash-atomic checkpoint of the committed state every -checkpoint-every
// GVT rounds; -resume restores the directory's published checkpoint into a
// fresh build of the same configuration and runs only the remaining steps
// (see docs/CHECKPOINT.md):
//
//	hotpotato -n 16 -steps 500 -checkpoint-dir ck
//	hotpotato -n 16 -steps 500 -checkpoint-dir ck -resume
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/hotpotato"
	"repro/internal/profiling"
	"repro/internal/replay"
	"repro/internal/routing"
	"repro/internal/traffic"
)

func main() {
	var (
		n          = flag.Int("n", 32, "network side length (N×N torus)")
		topo       = flag.String("topology", "torus", "topology: torus or mesh")
		steps      = flag.Int("steps", 100, "simulation duration in time steps")
		inject     = flag.Float64("inject", 100, "percentage of routers with injection applications (0-100)")
		fill       = flag.Int("fill", 4, "initial packets per router (0-4)")
		policyName = flag.String("policy", "busch", "routing policy: busch, greedy, dimorder, maxadvance")
		pattern    = flag.String("traffic", "uniform", "traffic pattern: uniform, transpose, complement, tornado, neighbor, hotspot[:frac]")
		absorb     = flag.Bool("absorb-sleeping", true, "absorb sleeping packets at their destination (practical mode)")
		heartbeat  = flag.Bool("heartbeat", false, "schedule per-step HEARTBEAT events at every router")
		seed       = flag.Uint64("seed", 1, "random seed")
		pes        = flag.Int("pes", 0, "processing elements (0 = GOMAXPROCS)")
		kps        = flag.Int("kps", 64, "kernel processes (the report's model uses 64)")
		queue      = flag.String("queue", "heap", "pending queue: "+strings.Join(eventq.Kinds(), ", "))
		gvtMode    = flag.String("gvt", "", "GVT algorithm: async (circulating token, the default) or barrier")
		maxOpt     = flag.Float64("max-optimism", 0, "bound speculation to this many steps beyond GVT (0 = unlimited)")
		adaptive   = flag.Bool("adaptive", false, "adapt each PE's optimism window to its rollback efficiency")
		sequential = flag.Bool("sequential", false, "run the sequential reference engine instead of Time Warp")
		kernel     = flag.Bool("kernel", false, "also print kernel statistics")
		progress   = flag.Bool("progress", false, "report GVT progress to stderr during long parallel runs")
		ckptDir    = flag.String("checkpoint-dir", "", "publish periodic checkpoints into this directory (Time Warp only)")
		ckptN      = flag.Int("checkpoint-every", 32, "checkpoint cadence in GVT rounds")
		resume     = flag.Bool("resume", false, "restore -checkpoint-dir's published checkpoint before running")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}

	policy, err := routing.ByName(*policyName)
	if err != nil {
		fatal(err)
	}
	traf, err := traffic.ByName(*pattern)
	if err != nil {
		fatal(err)
	}
	cfg := hotpotato.Config{
		N:                *n,
		Topology:         *topo,
		Policy:           policy,
		Traffic:          traf,
		InjectorPercent:  *inject,
		AbsorbSleeping:   *absorb,
		InitialFill:      *fill,
		Steps:            *steps,
		Heartbeat:        *heartbeat,
		Seed:             *seed,
		NumPEs:           *pes,
		NumKPs:           *kps,
		Queue:            *queue,
		GVTMode:          *gvtMode,
		MaxOptimism:      core.Time(*maxOpt),
		AdaptiveOptimism: *adaptive,
	}
	if *progress && !*sequential {
		// Throttle to roughly one line per percent of virtual time; OnGVT
		// runs on PE 0's goroutine mid-round, so keep it cheap.
		var last core.Time = -1
		stride := core.Time(*steps) / 100
		if stride < 1 {
			stride = 1
		}
		cfg.OnGVT = func(gvt core.Time) {
			if gvt-last >= stride {
				last = gvt
				fmt.Fprintf(os.Stderr, "gvt %.0f / %d\n", float64(gvt), *steps)
			}
		}
	}

	var (
		totals hotpotato.Totals
		ks     *core.Stats
	)
	if *sequential {
		if *ckptDir != "" || *resume {
			fatal(fmt.Errorf("checkpointing is a Time Warp feature; drop -sequential"))
		}
		seq, model, err := hotpotato.BuildSequential(cfg)
		if err != nil {
			fatal(err)
		}
		ks, err = seq.Run()
		if err != nil {
			fatal(err)
		}
		totals = model.Totals(seq)
	} else {
		sim, model, err := hotpotato.Build(cfg)
		if err != nil {
			fatal(err)
		}
		if *resume {
			if *ckptDir == "" {
				fatal(fmt.Errorf("-resume needs -checkpoint-dir"))
			}
			cp, err := replay.LoadCheckpoint(*ckptDir)
			if err != nil {
				fatal(err)
			}
			if err := replay.RestoreCheckpoint(cp, sim, nil); err != nil {
				fatal(err)
			}
			fmt.Printf("resumed from checkpoint: gvt=%.2f, %d events already committed\n",
				float64(cp.GVT), cp.Committed)
		}
		if *ckptDir != "" {
			// The CLI run carries no commit recorder, so its checkpoints omit
			// the trace digests; state, RNG streams and the event frontier
			// still travel, which is all a stats run needs to continue.
			w, err := replay.NewCheckpointWriter(*ckptDir, hotpotato.StateCodecName, hotpotato.CodecName, nil)
			if err != nil {
				fatal(err)
			}
			sim.SetCheckpoint(w, *ckptN)
		}
		ks, err = sim.Run()
		if err != nil {
			fatal(err)
		}
		totals = model.Totals(sim)
	}

	fmt.Printf("hot-potato routing: %dx%d %s, policy=%s, %d steps, seed=%d\n",
		*n, *n, cfg.Topology, policy.Name(), *steps, *seed)
	// The memory and comms lines print before the network block: the CLI
	// equality test compares the network statistics across engines, and
	// the pool/comms counters legitimately differ between them.
	fmt.Printf("memory: %d events recycled, pool hit rate %.3f, %d payloads reused\n",
		ks.EventsRecycled, ks.PoolHitRate, ks.PayloadsRecycled)
	fmt.Printf("comms: %d remote msgs in %d batches (avg %.1f), peak drain %d, %d parks, %d wakes\n",
		ks.MailSent, ks.BatchesFlushed, ks.AvgBatchSize, ks.MailboxPeak, ks.Parks, ks.Wakes)
	if ks.GVTRounds > 0 {
		avg := ks.GVTLatency / time.Duration(ks.GVTRounds)
		fmt.Printf("gvt: %d %s rounds, avg latency %v, %v total wait, %d throttled passes\n",
			ks.GVTRounds, ks.GVTMode, avg.Round(time.Microsecond), ks.GVTWait.Round(time.Microsecond), ks.OptClamps)
	}
	fmt.Print(totals)
	if *kernel {
		fmt.Print(ks)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hotpotato:", err)
	os.Exit(1)
}
