// Command phold runs the PHOLD synthetic benchmark against the Time Warp
// kernel and prints kernel statistics — the neutral stressor for tuning
// PE/KP/queue parameters independent of the routing model.
//
//	phold -lps 4096 -population 8 -remote 0.5 -end 100 -pes 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/phold"
	"repro/internal/profiling"
)

func main() {
	var (
		lps        = flag.Int("lps", 1024, "number of logical processes")
		population = flag.Int("population", 8, "initial jobs per LP")
		remote     = flag.Float64("remote", 0.5, "probability a job moves to a random LP")
		mean       = flag.Float64("mean", 1.0, "mean exponential hold time")
		lookahead  = flag.Float64("lookahead", 0.1, "constant minimum delay")
		end        = flag.Float64("end", 100, "virtual-time horizon")
		seed       = flag.Uint64("seed", 1, "random seed")
		pes        = flag.Int("pes", 0, "processing elements (0 = GOMAXPROCS)")
		kps        = flag.Int("kps", 0, "kernel processes (0 = default)")
		queue      = flag.String("queue", "heap", "pending queue: "+strings.Join(eventq.Kinds(), ", "))
		maxOpt     = flag.Float64("max-optimism", 0, "bound speculation to this far beyond GVT (0 = unlimited)")
		gvtMode    = flag.String("gvt", "", "GVT algorithm: async (circulating token, the default) or barrier")
		adaptive   = flag.Bool("adaptive", false, "adapt each PE's optimism window to its rollback efficiency")
		sequential = flag.Bool("sequential", false, "run the sequential reference engine")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	stopProf, perr := prof.Start()
	if perr != nil {
		fmt.Fprintln(os.Stderr, "phold:", perr)
		os.Exit(1)
	}

	cfg := phold.Config{
		NumLPs:           *lps,
		Population:       *population,
		RemoteProb:       *remote,
		MeanDelay:        *mean,
		Lookahead:        *lookahead,
		EndTime:          core.Time(*end),
		Seed:             *seed,
		NumPEs:           *pes,
		NumKPs:           *kps,
		Queue:            *queue,
		MaxOptimism:      core.Time(*maxOpt),
		GVTMode:          *gvtMode,
		AdaptiveOptimism: *adaptive,
	}

	var (
		ks    *core.Stats
		total int64
		err   error
	)
	if *sequential {
		var seq *core.Sequential
		var m *phold.Model
		seq, m, err = phold.BuildSequential(cfg)
		if err == nil {
			ks, err = seq.Run()
			if err == nil {
				total = m.TotalProcessed(seq)
			}
		}
	} else {
		var sim *core.Simulator
		var m *phold.Model
		sim, m, err = phold.Build(cfg)
		if err == nil {
			ks, err = sim.Run()
			if err == nil {
				total = m.TotalProcessed(sim)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "phold:", err)
		os.Exit(1)
	}
	fmt.Printf("phold: %d LPs, population %d, remote %.2f, horizon %g\n",
		*lps, *population, *remote, *end)
	fmt.Printf("  jobs processed: %d\n", total)
	fmt.Print(ks)
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "phold:", err)
		os.Exit(1)
	}
}
