// Command simcheck runs the differential correctness matrix: every
// requested model under every requested engine across PE/KP counts, queue
// kinds, seeds and kernel fault plans, comparing committed-trace hashes,
// per-LP event-order hashes and final-state hashes against a clean
// sequential reference. It prints a reproduction artifact for every
// divergence and exits non-zero if any cell mismatched.
//
// Examples:
//
//	simcheck                     # CI smoke matrix (seconds)
//	simcheck -full               # pre-merge matrix (minutes)
//	simcheck -models qnet -pes 2,4 -seeds 7,8,9
//	simcheck -mutation broken-reverse   # demo: watch the harness catch a bug
//	simcheck -v                  # one line per cell
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/profiling"
	"repro/internal/simcheck"
)

func main() {
	var (
		full       = flag.Bool("full", false, "run the pre-merge matrix instead of the CI smoke matrix")
		models     = flag.String("models", "", "comma-separated models to run (default: matrix preset)")
		engines    = flag.String("engines", "", "comma-separated engines: sequential,conservative,optimistic")
		pes        = flag.String("pes", "", "comma-separated PE counts")
		kps        = flag.String("kps", "", "comma-separated KP counts")
		queues     = flag.String("queues", "", "comma-separated pending-queue kinds: "+strings.Join(eventq.Kinds(), ","))
		seeds      = flag.String("seeds", "", "comma-separated seeds")
		faults     = flag.Bool("faults", true, "also run optimistic cells under the adversarial fault plan")
		mutation   = flag.String("mutation", "", "arm a seeded bug (self-test demo): broken-reverse or broken-priority")
		autorecord = flag.String("autorecord", "", "directory for auto-recorded .replay artifacts of diverging optimistic cells (shrunk; see cmd/replay)")
		verbose    = flag.Bool("v", false, "log every cell, not just failures")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	stopProf, perr := prof.Start()
	if perr != nil {
		fatal(perr)
	}
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}

	m := simcheck.Smoke()
	if *full {
		m = simcheck.Full()
	}
	if *models != "" {
		m.Models = strings.Split(*models, ",")
	}
	if *engines != "" {
		m.Engines = nil
		for _, e := range strings.Split(*engines, ",") {
			m.Engines = append(m.Engines, simcheck.EngineKind(e))
		}
	}
	if *pes != "" {
		m.PEs = parseInts(*pes, "pes")
	}
	if *kps != "" {
		m.KPs = parseInts(*kps, "kps")
	}
	if *queues != "" {
		m.Queues = strings.Split(*queues, ",")
	}
	if *seeds != "" {
		m.Seeds = nil
		for _, s := range strings.Split(*seeds, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -seeds entry %q: %v", s, err))
			}
			m.Seeds = append(m.Seeds, v)
		}
	}
	if !*faults {
		m.Faults = []*core.Faults{nil}
	}
	m.AutoRecord = *autorecord
	m.Mutation = simcheck.Mutation(*mutation)
	if m.Mutation != simcheck.MutNone {
		known := false
		for _, mu := range simcheck.Mutations() {
			known = known || mu == m.Mutation
		}
		if !known {
			fatal(fmt.Errorf("unknown -mutation %q (have %v)", *mutation, simcheck.Mutations()))
		}
	}

	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	rep := simcheck.Run(m, logf)

	for _, d := range rep.Divergences {
		fmt.Fprintln(os.Stderr, d)
	}
	// Artifact paths belong with the failures they reproduce: stderr, so
	// piping stdout (the summary) elsewhere never hides them.
	for _, a := range rep.Artifacts {
		fmt.Fprintf(os.Stderr, "simcheck: replay artifact %s (inspect with: replay -dump %s)\n", a, a)
	}
	fmt.Printf("simcheck: %d cells, %d divergences, %d forced rollbacks injected\n",
		rep.Cells, len(rep.Divergences), rep.ForcedRollbacks)
	// Flush profiles before the explicit exit below — deferred calls would
	// not run past os.Exit.
	if err := stopProf(); err != nil {
		fatal(err)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

func parseInts(s, name string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad -%s entry %q: %v", name, part, err))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simcheck:", err)
	os.Exit(2)
}
