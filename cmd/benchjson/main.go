// Command benchjson converts `go test -bench` output into a machine-
// readable JSON trajectory file, optionally embedding a previously captured
// baseline so before/after numbers travel together, and optionally
// asserting thresholds so CI fails loudly when a perf property regresses.
//
//	go test -bench=. -benchmem | benchjson -out BENCH.json
//	go test -bench=KernelPHOLD -benchmem | benchjson \
//	    -baseline BENCH_BASELINE.json \
//	    -check 'KernelPHOLD/pe4:allocs/op<=0.5*baseline' \
//	    -out BENCH_PR2.json
//
// The check syntax is NAME:FIELD<=BOUND or NAME:FIELD>=BOUND, where FIELD
// is any benchmark unit (ns/op, B/op, allocs/op, events/s, ...) and BOUND
// is either a number or FACTOR*baseline, resolved against the same field
// of the same benchmark in the embedded baseline. See EXPERIMENTS.md for
// the output schema.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line. The three standard units get named fields;
// everything else (b.ReportMetric output) lands in Metrics keyed by unit.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the on-disk document: context lines from the bench header, the
// results, and (optionally) the baseline document this run is compared to.
type File struct {
	Label      string            `json:"label,omitempty"`
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
	Baseline   *File             `json:"baseline,omitempty"`
}

func (f *File) find(name string) *Result {
	for i := range f.Benchmarks {
		if f.Benchmarks[i].Name == name {
			return &f.Benchmarks[i]
		}
	}
	return nil
}

// field returns the named unit's value: a standard unit or a custom metric.
func (r *Result) field(unit string) (float64, bool) {
	switch unit {
	case "ns/op":
		return r.NsPerOp, r.NsPerOp != 0
	case "B/op":
		return r.BytesPerOp, r.BytesPerOp != 0
	case "allocs/op":
		return r.AllocsPerOp, r.AllocsPerOp != 0
	}
	v, ok := r.Metrics[unit]
	return v, ok
}

var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+(.*)$`)

// gomaxprocsSuffix is the "-8" style suffix the testing package appends to
// benchmark names when GOMAXPROCS != 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` output. Header lines (goos, goarch,
// pkg, cpu) become context; unrecognised lines (PASS, ok, test logs) are
// skipped.
func parseBench(r io.Reader) (*File, error) {
	f := &File{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := strings.Cut(line, ": "); ok && len(strings.Fields(k)) == 1 {
			switch k {
			case "goos", "goarch", "pkg", "cpu":
				f.Context[k] = v
				continue
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q", line)
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		name = gomaxprocsSuffix.ReplaceAllString(name, "")
		res := Result{Name: name, Iterations: iters}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: unpaired value/unit in %q", line)
		}
		for i := 0; i < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = val
			}
		}
		f.Benchmarks = append(f.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Context) == 0 {
		f.Context = nil
	}
	return f, nil
}

// bestOf collapses repeated samples of one benchmark (go test -count=N)
// to the sample with the lowest ns/op. On a shared host wall-clock noise
// is one-sided — interference only ever makes a run slower — so the
// fastest sample is the robust estimator, and selecting the whole sample
// (rather than folding per-field minima) keeps its units mutually
// consistent. First-appearance order is preserved.
func bestOf(in []Result) []Result {
	idx := map[string]int{}
	var out []Result
	for _, r := range in {
		i, ok := idx[r.Name]
		if !ok {
			idx[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp != 0 && (out[i].NsPerOp == 0 || r.NsPerOp < out[i].NsPerOp) {
			out[i] = r
		}
	}
	return out
}

// check is one parsed -check assertion.
type check struct {
	name, unit string
	le         bool // true for <=, false for >=
	bound      float64
	relative   bool // bound is a factor of the baseline's value
}

var checkRe = regexp.MustCompile(`^(.+):([^:<>]+)(<=|>=)(.+)$`)

func parseCheck(s string) (check, error) {
	m := checkRe.FindStringSubmatch(s)
	if m == nil {
		return check{}, fmt.Errorf("benchjson: bad -check %q (want NAME:FIELD<=BOUND)", s)
	}
	c := check{name: m[1], unit: strings.TrimSpace(m[2]), le: m[3] == "<="}
	rhs := strings.TrimSpace(m[4])
	if factor, ok := strings.CutSuffix(rhs, "*baseline"); ok {
		c.relative = true
		rhs = factor
	}
	v, err := strconv.ParseFloat(rhs, 64)
	if err != nil {
		return check{}, fmt.Errorf("benchjson: bad -check bound %q in %q", rhs, s)
	}
	c.bound = v
	return c, nil
}

// eval resolves the check against the run (and its baseline, for relative
// bounds) and returns a failure description, or "" on pass.
func (c check) eval(f *File) string {
	res := f.find(c.name)
	if res == nil {
		return fmt.Sprintf("benchmark %q not found in results", c.name)
	}
	got, ok := res.field(c.unit)
	if !ok {
		return fmt.Sprintf("benchmark %q has no %s", c.name, c.unit)
	}
	bound := c.bound
	if c.relative {
		if f.Baseline == nil {
			return fmt.Sprintf("check on %q needs -baseline for a *baseline bound", c.name)
		}
		base := f.Baseline.find(c.name)
		if base == nil {
			return fmt.Sprintf("benchmark %q not found in baseline", c.name)
		}
		bv, ok := base.field(c.unit)
		if !ok {
			return fmt.Sprintf("baseline %q has no %s", c.name, c.unit)
		}
		bound = c.bound * bv
	}
	if c.le && got > bound {
		return fmt.Sprintf("%s: %s = %g, want <= %g", c.name, c.unit, got, bound)
	}
	if !c.le && got < bound {
		return fmt.Sprintf("%s: %s = %g, want >= %g", c.name, c.unit, got, bound)
	}
	return ""
}

type checkList []string

func (c *checkList) String() string     { return strings.Join(*c, ",") }
func (c *checkList) Set(s string) error { *c = append(*c, s); return nil }

func main() {
	var (
		label    = flag.String("label", "", "label recorded in the output document")
		baseline = flag.String("baseline", "", "benchjson file to embed as the baseline")
		out      = flag.String("out", "", "output path (default stdout)")
		best     = flag.Bool("best", false, "collapse repeated samples (go test -count=N) to each benchmark's fastest run")
		checks   checkList
	)
	flag.Var(&checks, "check", "assertion NAME:FIELD<=BOUND (repeatable); BOUND may be FACTOR*baseline")
	flag.Parse()

	f, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(f.Benchmarks) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines on stdin"))
	}
	if *best {
		f.Benchmarks = bestOf(f.Benchmarks)
	}
	f.Label = *label
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		base := &File{}
		if err := json.Unmarshal(raw, base); err != nil {
			fatal(fmt.Errorf("benchjson: parsing %s: %w", *baseline, err))
		}
		base.Baseline = nil // one level of history is enough
		f.Baseline = base
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}

	failed := 0
	for _, s := range checks {
		c, err := parseCheck(s)
		if err != nil {
			fatal(err)
		}
		if msg := c.eval(f); msg != "" {
			fmt.Fprintln(os.Stderr, "benchjson: FAIL:", msg)
			failed++
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: ok: %s\n", s)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
