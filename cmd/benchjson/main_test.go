package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKernelPHOLD/pe1         	       1	1251215284 ns/op	    625741 events/run	86025568 B/op	 1955249 allocs/op
BenchmarkKernelPHOLD/pe4-8       	       1	1084712432 ns/op	    625741 events/run	87828944 B/op	 1988225 allocs/op
BenchmarkFig6Efficiency          	       1	 208644416 ns/op	         0.2104 speedup/PE	99836728 B/op	 1940808 allocs/op
PASS
ok  	repro	6.828s
`

func parseSample(t *testing.T) *File {
	t.Helper()
	f, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseBench(t *testing.T) {
	f := parseSample(t)
	if len(f.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(f.Benchmarks))
	}
	if f.Context["cpu"] != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu context = %q", f.Context["cpu"])
	}

	// The GOMAXPROCS suffix is stripped so names are stable across hosts.
	pe4 := f.find("KernelPHOLD/pe4")
	if pe4 == nil {
		t.Fatal("KernelPHOLD/pe4 not found (suffix not stripped?)")
	}
	if pe4.NsPerOp != 1084712432 {
		t.Errorf("ns/op = %g", pe4.NsPerOp)
	}
	if pe4.AllocsPerOp != 1988225 {
		t.Errorf("allocs/op = %g", pe4.AllocsPerOp)
	}
	if pe4.BytesPerOp != 87828944 {
		t.Errorf("B/op = %g", pe4.BytesPerOp)
	}
	if pe4.Metrics["events/run"] != 625741 {
		t.Errorf("events/run = %g", pe4.Metrics["events/run"])
	}

	eff := f.find("Fig6Efficiency")
	if eff == nil || eff.Metrics["speedup/PE"] != 0.2104 {
		t.Errorf("Fig6Efficiency speedup/PE missing or wrong: %+v", eff)
	}
}

func TestBestOf(t *testing.T) {
	in := []Result{
		{Name: "A", NsPerOp: 300, AllocsPerOp: 7, Metrics: map[string]float64{"ev/s": 10}},
		{Name: "B", NsPerOp: 50},
		{Name: "A", NsPerOp: 100, AllocsPerOp: 9, Metrics: map[string]float64{"ev/s": 30}},
		{Name: "A", NsPerOp: 200, AllocsPerOp: 8},
		{Name: "B", NsPerOp: 60},
	}
	out := bestOf(in)
	if len(out) != 2 {
		t.Fatalf("got %d results, want 2", len(out))
	}
	// First-appearance order, whole-sample selection: A keeps its fastest
	// run's allocs and metrics, not a per-field minimum.
	a, b := out[0], out[1]
	if a.Name != "A" || b.Name != "B" {
		t.Fatalf("order not preserved: %q, %q", a.Name, b.Name)
	}
	if a.NsPerOp != 100 || a.AllocsPerOp != 9 || a.Metrics["ev/s"] != 30 {
		t.Errorf("A kept the wrong sample: %+v", a)
	}
	if b.NsPerOp != 50 {
		t.Errorf("B kept the wrong sample: %+v", b)
	}
}

func TestChecks(t *testing.T) {
	f := parseSample(t)
	// A baseline with double the allocations: the run halved them.
	f.Baseline = &File{Benchmarks: []Result{
		{Name: "KernelPHOLD/pe4", AllocsPerOp: 4000000},
	}}

	cases := []struct {
		expr string
		pass bool
	}{
		{"KernelPHOLD/pe4:allocs/op<=2000000", true},
		{"KernelPHOLD/pe4:allocs/op<=1000000", false},
		{"KernelPHOLD/pe4:events/run>=625741", true},
		{"KernelPHOLD/pe4:events/run>=700000", false},
		{"KernelPHOLD/pe4:allocs/op<=0.5*baseline", true},
		{"KernelPHOLD/pe4:allocs/op<=0.4*baseline", false},
		{"Fig6Efficiency:speedup/PE>=0.2", true},
	}
	for _, c := range cases {
		chk, err := parseCheck(c.expr)
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		msg := chk.eval(f)
		if (msg == "") != c.pass {
			t.Errorf("%s: pass=%v, msg=%q", c.expr, msg == "", msg)
		}
	}

	// Relative bound without a baseline is an error, not a silent pass.
	f.Baseline = nil
	chk, err := parseCheck("KernelPHOLD/pe4:allocs/op<=0.5*baseline")
	if err != nil {
		t.Fatal(err)
	}
	if chk.eval(f) == "" {
		t.Error("relative check passed without a baseline")
	}

	if _, err := parseCheck("garbage"); err == nil {
		t.Error("parseCheck accepted garbage")
	}
}
