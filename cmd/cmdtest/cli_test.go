// Package cmdtest builds the repository's binaries and drives them end to
// end — the smoke layer above the unit and integration suites.
package cmdtest

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "repro-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"hotpotato", "figures", "phold", "replay", "soaktest", "crashtest"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "repro/cmd/"+tool)
		cmd.Dir = ".."
		if out, err := cmd.CombinedOutput(); err != nil {
			panic(string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func runExpectError(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v succeeded, expected failure:\n%s", tool, args, out)
	}
	return string(out)
}

// TestHotpotatoCLI covers the main binary's happy path and determinism.
func TestHotpotatoCLI(t *testing.T) {
	a := run(t, "hotpotato", "-n", "8", "-steps", "30", "-seed", "5", "-kernel")
	for _, want := range []string{"packets delivered", "avg wait to inject", "events committed"} {
		if !strings.Contains(a, want) {
			t.Fatalf("output missing %q:\n%s", want, a)
		}
	}
	// Same seed, parallel vs sequential: the statistics block must match.
	b := run(t, "hotpotato", "-n", "8", "-steps", "30", "-seed", "5", "-sequential")
	stats := func(out string) string {
		idx := strings.Index(out, "network:")
		end := strings.Index(out, "kernel:")
		if end < 0 {
			end = len(out)
		}
		return out[idx:end]
	}
	if stats(a) != stats(b) {
		t.Fatalf("parallel and sequential CLI outputs differ:\n%s\nvs\n%s", stats(a), stats(b))
	}
}

// TestHotpotatoCLIFlags covers policy, traffic, topology and error paths.
func TestHotpotatoCLIFlags(t *testing.T) {
	out := run(t, "hotpotato", "-n", "6", "-steps", "20", "-policy", "greedy",
		"-traffic", "tornado", "-topology", "mesh", "-fill", "2", "-max-optimism", "4")
	if !strings.Contains(out, "policy=greedy") || !strings.Contains(out, "mesh") {
		t.Fatalf("flag echo missing:\n%s", out)
	}
	runExpectError(t, "hotpotato", "-policy", "warp9")
	runExpectError(t, "hotpotato", "-traffic", "nope")
	runExpectError(t, "hotpotato", "-n", "1")
}

// TestPholdCLI covers the benchmark binary.
func TestPholdCLI(t *testing.T) {
	out := run(t, "phold", "-lps", "64", "-end", "10", "-population", "2")
	if !strings.Contains(out, "jobs processed") {
		t.Fatalf("output missing totals:\n%s", out)
	}
	seq := run(t, "phold", "-lps", "64", "-end", "10", "-population", "2", "-sequential")
	pick := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "jobs processed") {
				return line
			}
		}
		return ""
	}
	if pick(out) != pick(seq) {
		t.Fatalf("parallel %q != sequential %q", pick(out), pick(seq))
	}
	runExpectError(t, "phold", "-lps", "0")
}

// TestFiguresCLI regenerates one cheap figure with every output mode.
func TestFiguresCLI(t *testing.T) {
	outDir := t.TempDir()
	out := run(t, "figures", "-fig", "queues", "-steps", "5", "-progress=false", "-out", outDir)
	if !strings.Contains(out, "heap") || !strings.Contains(out, "splay") {
		t.Fatalf("queue ablation output wrong:\n%s", out)
	}
	csv, err := os.ReadFile(filepath.Join(outDir, "queues.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "queue,") {
		t.Fatalf("CSV header wrong: %q", string(csv)[:20])
	}

	det := run(t, "figures", "-fig", "determinism", "-steps", "20", "-progress=false")
	if !strings.Contains(det, "RESULT: identical") {
		t.Fatalf("determinism figure failed:\n%s", det)
	}

	chart := run(t, "figures", "-fig", "3", "-steps", "10", "-chart", "-csv", "-progress=false")
	if !strings.Contains(chart, "legend:") {
		t.Fatalf("chart output missing legend:\n%s", chart)
	}
	if !strings.Contains(chart, "# Figure 3") {
		t.Fatalf("CSV mode missing title comment:\n%s", chart)
	}
	runExpectError(t, "figures", "-fig", "99")
}

// TestReplayCLI drives the full record -> verify -> dump -> shrink loop: a
// clean recording must verify on both engines; a recording of a seeded
// mutation must diverge from the sequential oracle, shrink to a fraction of
// its injections, and STILL diverge after shrinking.
func TestReplayCLI(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.replay")

	out := run(t, "replay", "-record", "-model", "hotpotato", "-pes", "2", "-seed", "7", "-o", clean)
	if !strings.Contains(out, "recorded "+clean) {
		t.Fatalf("record output wrong:\n%s", out)
	}
	for _, mode := range []string{"verify", "sequential"} {
		out = run(t, "replay", "-mode", mode, clean)
		if !strings.Contains(out, mode+" reproduces") {
			t.Fatalf("-mode %s did not reproduce the recording:\n%s", mode, out)
		}
	}
	out = run(t, "replay", "-dump", clean)
	for _, want := range []string{"replay log v1", "model=hotpotato", "injections:", "rounds:", "final:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}

	// A mutated recording fails against the oracle, before and after shrink.
	bad := filepath.Join(dir, "bad.replay")
	run(t, "replay", "-record", "-model", "phold", "-mutation", "map-order", "-pes", "2", "-seed", "1", "-o", bad)
	out = runExpectError(t, "replay", "-mode", "sequential", bad)
	if !strings.Contains(out, "DIVERGES") {
		t.Fatalf("mutated recording did not diverge:\n%s", out)
	}
	min := filepath.Join(dir, "bad.min.replay")
	out = run(t, "replay", "-shrink", bad)
	if !strings.Contains(out, "-> "+min) {
		t.Fatalf("shrink output wrong:\n%s", out)
	}
	out = runExpectError(t, "replay", "-mode", "sequential", min)
	if !strings.Contains(out, "DIVERGES") {
		t.Fatalf("shrunken log no longer diverges:\n%s", out)
	}

	// Error paths: corrupt input and bad flags exit with a usage error.
	junk := filepath.Join(dir, "junk.replay")
	if err := os.WriteFile(junk, []byte("not a replay log"), 0o644); err != nil {
		t.Fatal(err)
	}
	runExpectError(t, "replay", junk)
	runExpectError(t, "replay", "-mode", "warp9", clean)
	runExpectError(t, "replay", "-record", "-model", "nonesuch", "-o", filepath.Join(dir, "x.replay"))
	runExpectError(t, "replay")
}

// TestReplayCheckpointCLI drives the crash-recovery loop through the
// replay binary with a real SIGKILL and no build tags: record, run a
// checkpointed verify, kill it as soon as a checkpoint is published,
// resume from the survivor and require exit 0. The artifact-path
// convention holds throughout: the checkpoint directory is the only state
// shared between the killed process and its successor.
func TestReplayCheckpointCLI(t *testing.T) {
	dir := t.TempDir()
	lg := filepath.Join(dir, "run.replay")
	ck := filepath.Join(dir, "ck")

	run(t, "replay", "-record", "-model", "hotpotato", "-pes", "4", "-seed", "11", "-end", "90", "-o", lg)

	// Launch a checkpointed verify and SIGKILL it once the first checkpoint
	// publishes (MANIFEST appearing is the publication point).
	cmd := exec.Command(filepath.Join(binDir, "replay"),
		"-checkpoint-dir", ck, "-checkpoint-every", "8", lg)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(ck, "MANIFEST")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(manifest); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("no checkpoint published within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Kill() // SIGKILL: no cleanup handlers run
	cmd.Wait()

	// The killed run's directory must resume and verify cleanly...
	out := run(t, "replay", "-resume", "-checkpoint-dir", ck, lg)
	if !strings.Contains(out, "resume reproduces") {
		t.Fatalf("resume output wrong:\n%s", out)
	}
	// ...and resume without a published checkpoint is a usage error.
	out = runExpectError(t, "replay", "-resume", "-checkpoint-dir", filepath.Join(dir, "empty"), lg)
	if !strings.Contains(out, "no checkpoint") {
		t.Fatalf("expected ErrNoCheckpoint, got:\n%s", out)
	}
	runExpectError(t, "replay", "-resume", lg)
	runExpectError(t, "replay", "-mode", "sequential", "-checkpoint-dir", ck, lg)
}

// TestHotpotatoCheckpointCLI covers the stats binary's checkpoint flags: a
// run that checkpoints and a run resumed from its last published
// checkpoint must print identical network statistics.
func TestHotpotatoCheckpointCLI(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck")
	args := []string{"-n", "8", "-steps", "40", "-seed", "5", "-pes", "4", "-kps", "8", "-checkpoint-dir", ck}
	full := run(t, "hotpotato", args...)
	resumed := run(t, "hotpotato", append(args, "-resume")...)
	if !strings.Contains(resumed, "resumed from checkpoint") {
		t.Fatalf("resume banner missing:\n%s", resumed)
	}
	stats := func(out string) string {
		idx := strings.Index(out, "network:")
		if idx < 0 {
			t.Fatalf("no network block:\n%s", out)
		}
		return out[idx:]
	}
	if stats(full) != stats(resumed) {
		t.Fatalf("resumed statistics differ:\n%s\nvs\n%s", stats(full), stats(resumed))
	}
	runExpectError(t, "hotpotato", "-sequential", "-checkpoint-dir", ck)
	runExpectError(t, "hotpotato", "-resume")
}

// TestSoaktestCLI covers the chaos harness binary: a seeded smoke soak is
// deterministic (same report fingerprint on re-run), and a mutation-armed
// soak exits 1 with failures and artifact paths on stderr while the
// summary stays on stdout.
func TestSoaktestCLI(t *testing.T) {
	a := run(t, "soaktest", "-seed", "7", "-episodes", "2")
	if !strings.Contains(a, "fingerprint=") {
		t.Fatalf("summary missing fingerprint:\n%s", a)
	}
	b := run(t, "soaktest", "-seed", "7", "-episodes", "2")
	fp := func(s string) string {
		for _, f := range strings.Fields(s) {
			if strings.HasPrefix(f, "fingerprint=") {
				return f
			}
		}
		return ""
	}
	if fp(a) == "" || fp(a) != fp(b) {
		t.Fatalf("same seed produced different fingerprints: %q vs %q", fp(a), fp(b))
	}

	dir := t.TempDir()
	cmd := exec.Command(filepath.Join(binDir, "soaktest"),
		"-seed", "21", "-episodes", "2", "-models", "phold",
		"-mutation", "map-order", "-artifacts", dir)
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 1 {
		t.Fatalf("mutation soak: err=%v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "FAILURE") || !strings.Contains(stderr.String(), "replay artifact") {
		t.Fatalf("stderr missing failure/artifact lines:\n%s", stderr.String())
	}
	if strings.Contains(stdout.String(), "replay artifact") {
		t.Fatalf("artifact paths leaked to stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "failures=") {
		t.Fatalf("summary not on stdout:\n%s", stdout.String())
	}
	runExpectError(t, "soaktest", "-models", "nope")
}
